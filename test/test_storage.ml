(* The storage substrate: binary codec, slotted pages, buffer pool, heap
   files, and the directory store. *)
open Qf_storage
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Schema = Qf_relational.Schema
module Tuple = Qf_relational.Tuple

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_dir () = Filename.temp_file "qfstore" "" |> fun f ->
  Sys.remove f;
  f

let test_codec_roundtrip () =
  let values =
    V.[
      Int 0; Int 42; Int (-7); Int max_int; Int min_int;
      Real 0.; Real 2.5; Real (-1e300); Real infinity; Real nan;
      Str ""; Str "plain"; Str "with \x00 nul and \xff bytes";
      Str (String.make 5000 'x') (* bigger than a page *);
    ]
  in
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Codec.encode_value buf v;
      let decoded, off = Codec.decode_value (Buffer.to_bytes buf) 0 in
      check_int "consumed all" (Buffer.length buf) off;
      (* NaN <> NaN under Value.equal's float equality; compare encodings. *)
      let buf2 = Buffer.create 16 in
      Codec.encode_value buf2 decoded;
      Alcotest.(check string)
        (Format.asprintf "value %a" V.pp v)
        (Buffer.contents buf) (Buffer.contents buf2))
    values

let test_codec_tuple_roundtrip () =
  let tup = (Qf_relational.Tuple.of_array [| V.Int 3; V.Str "hello"; V.Real 1.5 |]) in
  check_bool "tuple roundtrip" true
    (Tuple.equal tup (Codec.tuple_of_string (Codec.tuple_to_string tup)));
  let schema = Schema.of_list [ "A"; "Long_Column_Name"; "c3" ] in
  check_bool "schema roundtrip" true
    (Schema.equal schema (Codec.schema_of_string (Codec.schema_to_string schema)))

let test_codec_corruption () =
  Alcotest.check_raises "bad tag" (Failure "Codec: bad value tag 'Z'") (fun () ->
      ignore (Codec.decode_value (Bytes.of_string "Zxxxxxxxx") 0));
  check_bool "truncated string detected" true
    (try
       ignore (Codec.tuple_of_string "\001\000\002\255\255\255\255");
       false
     with Failure _ -> true)

(* Fuzz the decoder's robustness contract: on arbitrarily truncated or
   bit-flipped encodings of real values/tuples, decoding either succeeds
   or raises [Failure] — never any other exception, never an
   out-of-bounds access (which OCaml would surface as
   [Invalid_argument]). *)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> V.Int i) int;
        map (fun f -> V.Real f) float;
        map (fun s -> V.Str s) (string_size (int_bound 40));
      ])

let gen_tuple =
  QCheck.Gen.(
    map
      (fun vs -> Tuple.of_array (Array.of_list vs))
      (list_size (int_range 1 6) gen_value))

(* An encoding, mangled: truncated to a random prefix and/or with one
   random bit flipped. *)
let mangle bytes_str =
  QCheck.Gen.(
    let n = String.length bytes_str in
    let* cut = int_bound n in
    let* flip = opt (int_bound (max 0 (cut - 1))) in
    let b = Bytes.of_string (String.sub bytes_str 0 cut) in
    (match flip with
    | Some i when i < Bytes.length b ->
      let* bit = int_bound 7 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      return b
    | _ -> return b))

let decodes_or_fails decode b =
  match decode b 0 with
  | _ -> true
  | exception Failure _ -> true
  | exception e ->
    QCheck.Test.fail_reportf "decoder leaked %s" (Printexc.to_string e)

let fuzz_decode_value =
  QCheck.Test.make ~name:"codec fuzz: decode_value on mangled input"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(
         gen_value >>= fun v ->
         let buf = Buffer.create 16 in
         Codec.encode_value buf v;
         mangle (Buffer.contents buf)))
    (decodes_or_fails Codec.decode_value)

let fuzz_decode_tuple =
  QCheck.Test.make ~name:"codec fuzz: decode_tuple on mangled input"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(
         gen_tuple >>= fun t ->
         let buf = Buffer.create 32 in
         Codec.encode_tuple buf t;
         mangle (Buffer.contents buf)))
    (decodes_or_fails Codec.decode_tuple)

let test_page_basics () =
  let page = Page.create () in
  check_int "empty" 0 (Page.count page);
  check_bool "add" true (Page.add page "first");
  check_bool "add2" true (Page.add page "second record");
  check_int "count" 2 (Page.count page);
  Alcotest.(check string) "get 0" "first" (Page.get page 0);
  Alcotest.(check string) "get 1" "second record" (Page.get page 1);
  (* Roundtrip through bytes. *)
  let reread = Page.of_bytes (Page.to_bytes page) in
  Alcotest.(check string) "persisted" "second record" (Page.get reread 1)

let test_page_fill_and_overflow () =
  let page = Page.create () in
  let record = String.make 100 'r' in
  let added = ref 0 in
  while Page.add page record do
    incr added
  done;
  (* 4096 - 4 header; each record takes 100 + 4 slot = 104. *)
  check_int "packs the page" ((4096 - 4) / 104) !added;
  check_bool "full page rejects" false (Page.add page record);
  Alcotest.check_raises "oversized record"
    (Invalid_argument
       (Printf.sprintf "Page.add: record of %d bytes exceeds the page payload"
          (Page.max_record_size + 1)))
    (fun () -> ignore (Page.add (Page.create ()) (String.make (Page.max_record_size + 1) 'x')))

let test_page_corrupt_header () =
  let bytes = Bytes.make Page.size '\255' in
  check_bool "corrupt header rejected" true
    (try
       ignore (Page.of_bytes bytes);
       false
     with Failure _ -> true)

let test_heap_file_roundtrip () =
  let path = Filename.temp_file "qfheap" ".qfh" in
  let schema = Schema.of_list [ "X"; "Name" ] in
  let file = Heap_file.create path schema in
  let n = 5000 in
  for i = 1 to n do
    Heap_file.append file (Qf_relational.Tuple.of_array [| V.Int i; V.Str (Printf.sprintf "row-%d" i) |])
  done;
  Heap_file.close file;
  let reopened = Heap_file.open_existing path in
  check_bool "schema preserved" true (Schema.equal schema (Heap_file.schema reopened));
  let rel = Heap_file.to_relation reopened in
  check_int "all rows back" n (R.cardinal rel);
  check_bool "spot check" true (R.mem rel (Qf_relational.Tuple.of_array [| V.Int 777; V.Str "row-777" |]));
  Heap_file.close reopened;
  Sys.remove path

let test_heap_file_small_cache () =
  (* A 2-page buffer pool forces eviction traffic; data must survive. *)
  let path = Filename.temp_file "qfheap" ".qfh" in
  let file = Heap_file.create ~capacity:2 path (Schema.of_list [ "X" ]) in
  let n = 3000 in
  for i = 1 to n do
    Heap_file.append file (Qf_relational.Tuple.of_array [| V.Int i |])
  done;
  let _, _, evictions = Heap_file.cache_stats file in
  check_bool "evictions happened" true (evictions > 0);
  let rel = Heap_file.to_relation file in
  check_int "all rows despite eviction" n (R.cardinal rel);
  Heap_file.close file;
  Sys.remove path

let test_heap_file_arity_check () =
  let path = Filename.temp_file "qfheap" ".qfh" in
  let file = Heap_file.create path (Schema.of_list [ "X" ]) in
  Alcotest.check_raises "arity" (Invalid_argument "Heap_file.append: arity mismatch")
    (fun () -> Heap_file.append file (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 2 |]));
  Heap_file.close file;
  Sys.remove path

let test_store_roundtrip () =
  let dir = temp_dir () in
  let store = Store.open_dir dir in
  let rel =
    R.of_values [ "BID"; "Item" ]
      V.[ [ Int 1; Str "beer" ]; [ Int 2; Str "diapers" ] ]
  in
  Store.save store "baskets" rel;
  Store.save store "empty" (R.create (Schema.of_list [ "A" ]));
  Alcotest.(check (list string)) "list" [ "baskets"; "empty" ] (Store.list store);
  check_bool "mem" true (Store.mem store "baskets");
  check_bool "load equals" true (R.equal rel (Store.load store "baskets"));
  check_int "empty relation loads" 0 (R.cardinal (Store.load store "empty"));
  (* Overwrite. *)
  Store.save store "baskets" (R.of_values [ "BID"; "Item" ] V.[ [ Int 9; Str "x" ] ]);
  check_int "overwrite" 1 (R.cardinal (Store.load store "baskets"));
  Alcotest.check_raises "unsafe name"
    (Invalid_argument "Store: unsafe relation name \"../evil\"") (fun () ->
      Store.save store "../evil" rel)

let test_store_catalog_bridge () =
  let dir = temp_dir () in
  let catalog =
    (Qf_workload.Medical.generate
       { Qf_workload.Medical.default with n_patients = 200; seed = 9 })
      .catalog
  in
  let _store = Store.of_catalog dir catalog in
  let reloaded = Store.to_catalog (Store.open_dir dir) in
  List.iter
    (fun name ->
      check_bool
        (Printf.sprintf "%s survives the store" name)
        true
        (R.equal
           (Qf_relational.Catalog.find catalog name)
           (Qf_relational.Catalog.find reloaded name)))
    (Qf_relational.Catalog.names catalog)

(* End to end: run a flock against relations that lived on disk. *)
let test_flock_over_store () =
  let dir = temp_dir () in
  let catalog =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 200; n_items = 40; seed = 4 }
  in
  ignore (Store.of_catalog dir catalog);
  let reloaded = Store.to_catalog (Store.open_dir dir) in
  let flock = Qf_core.Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:10 in
  Alcotest.check Test_util.relation "same answers from disk"
    (Qf_core.Direct.run catalog flock)
    (Qf_core.Direct.run reloaded flock)

(* File-based mining (Sec. 1.4): the streaming two-pass a-priori agrees
   with the flock evaluated over the same data. *)
let test_file_mining_matches_flock () =
  let catalog =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 300; n_items = 60; seed = 77 }
  in
  let baskets = Qf_relational.Catalog.find catalog "baskets" in
  let path = Filename.temp_file "qfmine" ".qfh" in
  let file = Heap_file.create path (R.schema baskets) in
  Heap_file.append_relation file baskets;
  List.iter
    (fun support ->
      let streamed = File_mining.frequent_pairs_relation file ~support in
      let flock =
        Qf_core.Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support
      in
      Alcotest.check Test_util.relation
        (Printf.sprintf "support %d" support)
        (Qf_core.Direct.run catalog flock)
        streamed)
    [ 5; 15; 40 ];
  Heap_file.close file;
  Sys.remove path

let test_file_mining_dedups () =
  let path = Filename.temp_file "qfmine" ".qfh" in
  let file = Heap_file.create path (Qf_relational.Schema.of_list [ "BID"; "Item" ]) in
  (* Duplicate rows must not inflate supports. *)
  List.iter
    (fun (b, i) -> Heap_file.append file (Qf_relational.Tuple.of_array [| V.Int b; V.Int i |]))
    [ 1, 10; 1, 10; 1, 20; 2, 10; 2, 20; 2, 20 ];
  let pairs = File_mining.frequent_pairs file ~support:2 in
  check_int "one pair" 1 (List.length pairs);
  let p = List.hd pairs in
  check_int "support 2, not 4" 2 p.File_mining.support;
  Heap_file.close file;
  Sys.remove path

let test_file_mining_counts () =
  let path = Filename.temp_file "qfmine" ".qfh" in
  let file = Heap_file.create path (Qf_relational.Schema.of_list [ "BID"; "Item" ]) in
  List.iter
    (fun (b, i) -> Heap_file.append file (Qf_relational.Tuple.of_array [| V.Int b; V.Int i |]))
    [ 1, 1; 1, 2; 1, 3; 2, 1; 2, 2; 3, 1; 3, 2; 4, 3 ];
  let pairs = File_mining.frequent_pairs file ~support:2 in
  (* {1,2}: baskets 1,2,3 -> 3.  {1,3} and {2,3}: only basket 1. *)
  check_int "one frequent pair" 1 (List.length pairs);
  let p = List.hd pairs in
  check_bool "pair (1,2)" true
    (V.equal p.File_mining.item1 (V.Int 1) && V.equal p.item2 (V.Int 2));
  check_int "support 3" 3 p.File_mining.support;
  Heap_file.close file;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "file mining = flock (sweep)" `Quick
      test_file_mining_matches_flock;
    Alcotest.test_case "file mining dedups rows" `Quick test_file_mining_dedups;
    Alcotest.test_case "file mining counts" `Quick test_file_mining_counts;
    Alcotest.test_case "codec value roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec tuple/schema roundtrip" `Quick
      test_codec_tuple_roundtrip;
    Alcotest.test_case "codec corruption detected" `Quick test_codec_corruption;
    QCheck_alcotest.to_alcotest fuzz_decode_value;
    QCheck_alcotest.to_alcotest fuzz_decode_tuple;
    Alcotest.test_case "page basics" `Quick test_page_basics;
    Alcotest.test_case "page fill and overflow" `Quick test_page_fill_and_overflow;
    Alcotest.test_case "page corrupt header" `Quick test_page_corrupt_header;
    Alcotest.test_case "heap file roundtrip" `Quick test_heap_file_roundtrip;
    Alcotest.test_case "heap file with tiny cache" `Quick
      test_heap_file_small_cache;
    Alcotest.test_case "heap file arity check" `Quick test_heap_file_arity_check;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store/catalog bridge" `Quick test_store_catalog_bridge;
    Alcotest.test_case "flock over stored relations" `Quick test_flock_over_store;
  ]
