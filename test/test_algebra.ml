(* Joins, aggregates, CSV, catalog: the relational operators above storage. *)
open Qf_relational

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let employees =
  Relation.of_values [ "Emp"; "Dept" ]
    Value.
      [
        [ Str "ann"; Str "eng" ];
        [ Str "bob"; Str "eng" ];
        [ Str "cat"; Str "ops" ];
        [ Str "dan"; Str "hr" ];
      ]

let budgets =
  Relation.of_values [ "Dept"; "Budget" ]
    Value.[ [ Str "eng"; Int 100 ]; [ Str "ops"; Int 50 ] ]

let test_equi_join () =
  let j = Join.equi employees budgets [ "Dept", "Dept" ] in
  check_int "matches" 3 (Relation.cardinal j);
  check_bool "schema drops join target" true
    (Schema.equal (Relation.schema j) (Schema.of_list [ "Emp"; "Dept"; "Budget" ]));
  check_bool "ann row" true
    (Relation.mem j (Qf_relational.Tuple.of_array [| Value.Str "ann"; Value.Str "eng"; Value.Int 100 |]))

let test_join_renames_collisions () =
  let a = Relation.of_values [ "X"; "N" ] Value.[ [ Int 1; Int 5 ] ] in
  let b = Relation.of_values [ "X"; "N" ] Value.[ [ Int 1; Int 6 ] ] in
  let j = Join.equi a b [ "X", "X" ] in
  check_bool "collision suffixed" true
    (Schema.equal (Relation.schema j) (Schema.of_list [ "X"; "N"; "N_2" ]))

let test_cross_product () =
  let j = Join.equi budgets budgets [] in
  check_int "cross size" 4 (Relation.cardinal j)

let test_semi_anti () =
  let s = Join.semi employees budgets [ "Dept", "Dept" ] in
  check_int "semi keeps matched" 3 (Relation.cardinal s);
  let a = Join.anti employees budgets [ "Dept", "Dept" ] in
  check_int "anti keeps unmatched" 1 (Relation.cardinal a);
  check_bool "dan has no budget" true
    (Relation.mem a (Qf_relational.Tuple.of_array [| Value.Str "dan"; Value.Str "hr" |]))

let test_aggregate_eval () =
  let schema = Schema.of_list [ "X"; "W" ] in
  let tuples =
    [ (Qf_relational.Tuple.of_array [| Value.Int 1; Value.Int 10 |]); (Qf_relational.Tuple.of_array [| Value.Int 2; Value.Int 30 |]) ]
  in
  check_bool "count" true
    (Value.equal (Aggregate.eval Count schema tuples) (Real 2.));
  check_bool "sum" true
    (Value.equal (Aggregate.eval (Sum "W") schema tuples) (Real 40.));
  check_bool "min" true
    (Value.equal (Aggregate.eval (Min "W") schema tuples) (Int 10));
  check_bool "max" true
    (Value.equal (Aggregate.eval (Max "W") schema tuples) (Int 30))

let test_aggregate_errors () =
  let schema = Schema.of_list [ "X" ] in
  Alcotest.check_raises "empty group"
    (Invalid_argument "Aggregate.eval: empty group") (fun () ->
      ignore (Aggregate.eval Count schema []));
  Alcotest.check_raises "sum of strings"
    (Invalid_argument "Aggregate.sum: non-numeric value \"a\"") (fun () ->
      ignore (Aggregate.eval (Sum "X") schema [ (Qf_relational.Tuple.of_array [| Value.Str "a" |]) ]))

let test_group_filter () =
  let r =
    Relation.of_values [ "G"; "V" ]
      Value.
        [
          [ Str "a"; Int 1 ];
          [ Str "a"; Int 2 ];
          [ Str "a"; Int 3 ];
          [ Str "b"; Int 1 ];
        ]
  in
  let out = Aggregate.group_filter r ~keys:[ "G" ] ~func:Count ~threshold:2. in
  check_int "one group passes" 1 (Relation.cardinal out);
  check_bool "group a" true (Relation.mem out (Qf_relational.Tuple.of_array [| Value.Str "a" |]));
  let sums = Aggregate.group_filter r ~keys:[ "G" ] ~func:(Sum "V") ~threshold:6. in
  check_int "sum filter" 1 (Relation.cardinal sums)

let test_group_by_counts () =
  let r =
    Relation.of_values [ "G"; "V" ]
      Value.[ [ Str "a"; Int 1 ]; [ Str "a"; Int 2 ]; [ Str "b"; Int 9 ] ]
  in
  let groups = Aggregate.group_by r ~keys:[ "G" ] ~func:Count in
  check_int "two groups" 2 (List.length groups);
  let find key =
    List.assoc_opt true
      (List.map (fun (k, v) -> Tuple.equal k (Qf_relational.Tuple.of_array [| Value.Str key |]), v) groups)
  in
  check_bool "count a = 2" true (find "a" = Some (Value.Real 2.));
  check_bool "count b = 1" true (find "b" = Some (Value.Real 1.))

let test_csv_roundtrip () =
  let r =
    Relation.of_values [ "Name"; "N" ]
      Value.
        [
          [ Str "plain"; Int 1 ];
          [ Str "with,comma"; Int 2 ];
          [ Str "with\"quote"; Int 3 ];
          [ Str "with\nnewline"; Int 4 ];
          [ Str "5"; Int 5 ];
        ]
  in
  let r' = Csv.parse_string (Csv.to_string r) in
  (* "5" reparses as Int 5 — type inference is lossy for numeric strings,
     so compare the textual form, which is stable. *)
  check_int "row count" (Relation.cardinal r) (Relation.cardinal r');
  Alcotest.(check string)
    "second roundtrip is a fixpoint" (Csv.to_string r') (Csv.to_string r')

let test_csv_typed_roundtrip () =
  let r =
    Relation.of_values [ "A"; "B"; "C" ]
      Value.[ [ Int 1; Real 2.5; Str "x y" ]; [ Int 2; Real 0.25; Str "z" ] ]
  in
  check_bool "exact roundtrip for unambiguous values" true
    (Relation.equal r (Csv.parse_string (Csv.to_string r)))

let test_csv_errors () =
  Alcotest.check_raises "empty input" (Failure "Csv.parse: empty input (missing header)")
    (fun () -> ignore (Csv.parse_string ""));
  Alcotest.check_raises "ragged row"
    (Failure "Csv.parse: row 2 has 1 fields, expected 2") (fun () ->
      ignore (Csv.parse_string "A,B\nonly_one"))

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "qfcsv" ".csv" in
  let rel =
    Relation.of_values [ "A"; "B" ]
      Value.[ [ Int 1; Str "x,y" ]; [ Int 2; Str "line\nbreak" ] ]
  in
  Csv.save path rel;
  let back = Csv.load path in
  Sys.remove path;
  check_bool "file roundtrip" true (Relation.equal rel back)

let test_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "r" employees;
  check_bool "mem" true (Catalog.mem cat "r");
  check_int "stats cached" 4 (Statistics.cardinality (Catalog.stats cat "r"));
  let copy = Catalog.copy cat in
  Catalog.add copy "s" budgets;
  check_bool "copy isolated" false (Catalog.mem cat "s");
  Catalog.remove cat "r";
  check_bool "removed" false (Catalog.mem cat "r");
  check_bool "copy unaffected by remove" true (Catalog.mem copy "r");
  Alcotest.check_raises "find missing"
    (Failure "Catalog.find: unknown relation \"zz\"") (fun () ->
      ignore (Catalog.find cat "zz"))

let suite =
  [
    Alcotest.test_case "equi join" `Quick test_equi_join;
    Alcotest.test_case "join renames collisions" `Quick test_join_renames_collisions;
    Alcotest.test_case "cross product" `Quick test_cross_product;
    Alcotest.test_case "semi and anti join" `Quick test_semi_anti;
    Alcotest.test_case "aggregate eval" `Quick test_aggregate_eval;
    Alcotest.test_case "aggregate errors" `Quick test_aggregate_errors;
    Alcotest.test_case "group_filter" `Quick test_group_filter;
    Alcotest.test_case "group_by counts" `Quick test_group_by_counts;
    Alcotest.test_case "csv roundtrip with quoting" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv typed roundtrip" `Quick test_csv_typed_roundtrip;
    Alcotest.test_case "csv errors" `Quick test_csv_errors;
    Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
    Alcotest.test_case "catalog" `Quick test_catalog;
  ]
