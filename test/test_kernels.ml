(* Row/columnar kernel equivalence.

   Every relational kernel dispatches on {!Layout.mode} between the
   row-at-a-time engine and the dictionary-encoded columnar engine; both
   must compute exactly the same result *set* on every input.  The QCheck
   properties below run each kernel under both layouts (rebuilding the
   inputs per arm, so each arm pays its own boundary conversion) and
   require [Relation.equal]; deterministic units pin the classic edge
   cases (empty input, all-duplicate rows, single-column relations).

   The corpus check at the bottom replays the differential suite's 100
   seeded basket instances with the layout forced each way and the pool
   forced to 1 and 4 domains — the full-stack analogue of the per-kernel
   properties. *)

module R = Qf_relational.Relation
module V = Qf_relational.Value
module Tuple = Qf_relational.Tuple
module Layout = Qf_relational.Layout
module Join = Qf_relational.Join
module Aggregate = Qf_relational.Aggregate
module Catalog = Qf_relational.Catalog
module Pool = Qf_exec_pool.Pool
open Qf_core
open Qf_testgen.Testgen

let with_layout mode f =
  Layout.set_override (Some mode);
  Fun.protect ~finally:(fun () -> Layout.set_override None) f

(* Run [f] (a kernel application over freshly built inputs) under both
   layouts and check the results agree.  [f] receives nothing but must
   rebuild its inputs internally so each arm converts at its own
   boundary. *)
let both_layouts name f =
  let row = with_layout Layout.Row f in
  let col = with_layout Layout.Columnar f in
  if not (R.equal row col) then
    QCheck.Test.fail_reportf "%s: row/columnar results differ\nrow:\n%a\ncolumnar:\n%a"
      name R.pp row R.pp col;
  true

(* {1 Generators} *)

(* Two joinable relations sharing a [B] column, skewed to a tiny value
   universe so duplicate keys, empty join results and all-duplicate
   columns all occur naturally. *)
let gen_join_pair =
  QCheck.Gen.(
    let* a = gen_small_relation ~columns:[ "A"; "B" ] ~max_value:4 ~max_rows:24 in
    let* b = gen_small_relation ~columns:[ "B"; "C" ] ~max_value:4 ~max_rows:24 in
    return (a, b))

let arb_join_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "a:\n%s\nb:\n%s" (pp_relation a) (pp_relation b))
    gen_join_pair

let arb_rel3 =
  QCheck.make ~print:pp_relation
    (gen_small_relation ~columns:[ "A"; "B"; "C" ] ~max_value:4 ~max_rows:30)

(* Rebuild a relation from its sorted values so each layout arm starts
   from a fresh, unconverted instance. *)
let values_of rel =
  List.map Tuple.to_list (R.to_sorted_list rel)

let rebuild columns rel = R.of_values columns (values_of rel)

(* {1 Join kernels} *)

let join_prop op op_name =
  QCheck.Test.make ~count:150 ~name:(op_name ^ ": row = columnar")
    arb_join_pair (fun (a, b) ->
      both_layouts op_name (fun () ->
          let a = rebuild [ "A"; "B" ] a and b = rebuild [ "B"; "C" ] b in
          op a b [ "B", "B" ]))

(* The forced-parallel variant drives the chunked fan-out paths even on
   tiny inputs ([par_threshold:0] at the call sites below); the pool
   comes from the environment (the second runtest pass forces
   QF_DOMAINS=4). *)
let join_prop_par op op_name =
  QCheck.Test.make ~count:75 ~name:(op_name ^ " (forced parallel): row = columnar")
    arb_join_pair (fun (a, b) ->
      both_layouts op_name (fun () ->
          let a = rebuild [ "A"; "B" ] a and b = rebuild [ "B"; "C" ] b in
          op a b [ "B", "B" ]))

(* {1 Select / project} *)

let select_pred tup =
  match Tuple.get tup 0 with V.Int i -> i mod 2 = 0 | _ -> true

let select_prop =
  QCheck.Test.make ~count:150 ~name:"select: row = columnar" arb_rel3
    (fun rel ->
      both_layouts "select" (fun () ->
          R.select (rebuild [ "A"; "B"; "C" ] rel) select_pred))

let project_prop =
  QCheck.Test.make ~count:150 ~name:"project: row = columnar" arb_rel3
    (fun rel ->
      both_layouts "project" (fun () ->
          R.project (rebuild [ "A"; "B"; "C" ] rel) [ "B"; "A" ]))

let project_single_prop =
  QCheck.Test.make ~count:150 ~name:"project to one column: row = columnar"
    arb_rel3 (fun rel ->
      both_layouts "project1" (fun () ->
          R.project ~par_threshold:0 (rebuild [ "A"; "B"; "C" ] rel) [ "C" ]))

(* {1 Aggregation} *)

let arb_func =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Aggregate.pp_func f)
    QCheck.Gen.(
      oneofl
        [
          Aggregate.Count;
          Aggregate.Sum "C";
          Aggregate.Min "C";
          Aggregate.Max "C";
        ])

let groups_to_rel keys rel ~func =
  (* Encode group_by output as a relation so R.equal can compare it:
     key columns plus the aggregate value. *)
  let groups = Aggregate.group_by rel ~keys ~func in
  R.of_values
    (keys @ [ "agg" ])
    (List.map
       (fun (key, v) -> Tuple.to_list key @ [ v ])
       groups)

let group_by_prop =
  QCheck.Test.make ~count:150 ~name:"group_by: row = columnar"
    (QCheck.pair arb_rel3 arb_func) (fun (rel, func) ->
      both_layouts "group_by" (fun () ->
          groups_to_rel [ "A"; "B" ] (rebuild [ "A"; "B"; "C" ] rel) ~func))

let group_by_single_key_prop =
  (* Exercises the dense code->group fast path (single key column). *)
  QCheck.Test.make ~count:150 ~name:"group_by one key: row = columnar"
    (QCheck.pair arb_rel3 arb_func) (fun (rel, func) ->
      both_layouts "group_by1" (fun () ->
          groups_to_rel [ "B" ] (rebuild [ "A"; "B"; "C" ] rel) ~func))

let group_filter_prop =
  QCheck.Test.make ~count:150 ~name:"group_filter: row = columnar"
    (QCheck.triple arb_rel3 arb_func (QCheck.int_range 1 5))
    (fun (rel, func, threshold) ->
      both_layouts "group_filter" (fun () ->
          Aggregate.group_filter
            (rebuild [ "A"; "B"; "C" ] rel)
            ~keys:[ "A"; "B" ] ~func
            ~threshold:(float_of_int threshold)))

let group_filter_report_prop =
  QCheck.Test.make ~count:150
    ~name:"group_filter_report candidates = |project keys|"
    (QCheck.pair arb_rel3 (QCheck.int_range 1 5)) (fun (rel, threshold) ->
      List.for_all
        (fun mode ->
          with_layout mode (fun () ->
              let rel = rebuild [ "A"; "B"; "C" ] rel in
              let _, candidates =
                Aggregate.group_filter_report rel ~keys:[ "A"; "B" ]
                  ~func:Aggregate.Count
                  ~threshold:(float_of_int threshold)
              in
              candidates = R.cardinal (R.project rel [ "A"; "B" ])))
        [ Layout.Row; Layout.Columnar ])

(* {1 Edge-case units} *)

let check_equal name expected actual =
  if not (R.equal expected actual) then
    Alcotest.failf "%s: row/columnar results differ" name

let unit_both name f =
  let row = with_layout Layout.Row f in
  let col = with_layout Layout.Columnar f in
  check_equal name row col

let test_empty_inputs () =
  let empty cols = R.of_values cols [] in
  unit_both "equi on empty" (fun () ->
      Join.equi (empty [ "A"; "B" ]) (empty [ "B"; "C" ]) [ "B", "B" ]);
  unit_both "semi empty probe" (fun () ->
      Join.semi (empty [ "A"; "B" ])
        (R.of_values [ "B"; "C" ] [ [ V.Int 1; V.Int 2 ] ])
        [ "B", "B" ]);
  unit_both "anti empty build" (fun () ->
      Join.anti
        (R.of_values [ "A"; "B" ] [ [ V.Int 1; V.Int 2 ] ])
        (empty [ "B"; "C" ]) [ "B", "B" ]);
  unit_both "select on empty" (fun () ->
      R.select (empty [ "A"; "B" ]) (fun _ -> true));
  unit_both "project on empty" (fun () -> R.project (empty [ "A"; "B" ]) [ "A" ]);
  unit_both "group_filter on empty" (fun () ->
      Aggregate.group_filter (empty [ "A"; "B" ]) ~keys:[ "A" ]
        ~func:Aggregate.Count ~threshold:1.)

let test_all_duplicates () =
  (* Relations are sets, so "all duplicates" means every projected row
     collapses to one: the dedup paths must agree. *)
  let rel =
    R.of_values [ "A"; "B" ]
      (List.init 20 (fun i -> [ V.Int (i mod 2); V.Int 7 ]))
  in
  unit_both "project all-dup column" (fun () ->
      R.project (rebuild [ "A"; "B" ] rel) [ "B" ]);
  unit_both "group_by all-dup key" (fun () ->
      groups_to_rel [ "B" ] (rebuild [ "A"; "B" ] rel) ~func:Aggregate.Count);
  unit_both "self equi on all-dup key" (fun () ->
      let r = rebuild [ "A"; "B" ] rel in
      Join.equi r (rebuild [ "A"; "B" ] rel) [ "B", "A" ])

let test_single_column () =
  let rel = R.of_values [ "A" ] (List.init 9 (fun i -> [ V.Int (i mod 3) ])) in
  unit_both "single-column project" (fun () ->
      R.project (rebuild [ "A" ] rel) [ "A" ]);
  unit_both "single-column semi self" (fun () ->
      let r = rebuild [ "A" ] rel in
      Join.semi r r [ "A", "A" ]);
  unit_both "single-column group_filter" (fun () ->
      Aggregate.group_filter (rebuild [ "A" ] rel) ~keys:[ "A" ]
        ~func:Aggregate.Count ~threshold:1.)

(* Values of different types never share a dictionary code: Int 1 and
   Real 1.0 must stay distinct under both layouts. *)
let test_mixed_types () =
  let rel =
    R.of_values [ "A"; "B" ]
      [
        [ V.Int 1; V.Str "x" ];
        [ V.Real 1.0; V.Str "x" ];
        [ V.Int 1; V.Str "y" ];
      ]
  in
  unit_both "mixed-type project" (fun () ->
      R.project (rebuild [ "A"; "B" ] rel) [ "A" ]);
  unit_both "mixed-type self join" (fun () ->
      let r = rebuild [ "A"; "B" ] rel in
      Join.equi r (rebuild [ "A"; "B" ] rel) [ "A", "A" ])

(* {1 The full-stack corpus under forced layouts and pool sizes} *)

let run_executors cat flock =
  let direct = Direct.run cat flock in
  let optimized = Plan_exec.run cat (Optimizer.optimize cat flock) in
  let singleton =
    match Apriori_gen.singleton_plan flock with
    | Ok p -> Plan_exec.run cat p
    | Error e -> failwith ("singleton plan: " ^ e)
  in
  let dynamic =
    match Dynamic.run cat flock with
    | Ok r -> r.Dynamic.answers
    | Error e -> failwith ("dynamic: " ^ e)
  in
  [
    "direct", direct;
    "optimized plan", optimized;
    "singleton plan", singleton;
    "dynamic", dynamic;
  ]

let test_corpus_layout_insensitive () =
  let seeds = List.init 100 Fun.id in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_size (Pool.default_size ()))
    (fun () ->
      List.iter
        (fun seed ->
          let rel, threshold = instance ~seed gen_basket_instance in
          let flock = pair_flock threshold in
          (* Reference: the row engine on a sequential pool. *)
          Pool.set_default_size 1;
          let expected =
            with_layout Layout.Row (fun () -> Direct.run (catalog_of rel) flock)
          in
          List.iter
            (fun mode ->
              List.iter
                (fun domains ->
                  Pool.set_default_size domains;
                  with_layout mode (fun () ->
                      List.iter
                        (fun (name, got) ->
                          if not (R.equal expected got) then
                            Alcotest.failf
                              "seed %d: %s under %s layout / %d domains \
                               disagrees with row direct (threshold %d)\n%s"
                              seed name (Layout.to_string mode) domains
                              threshold (pp_relation rel))
                        (run_executors (catalog_of rel) flock)))
                [ 1; 4 ])
            [ Layout.Row; Layout.Columnar ])
        seeds)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      join_prop (fun a b p -> Join.equi a b p) "equi";
      join_prop (fun a b p -> Join.semi a b p) "semi";
      join_prop (fun a b p -> Join.anti a b p) "anti";
      join_prop_par (fun a b p -> Join.equi ~par_threshold:0 a b p) "equi";
      join_prop_par (fun a b p -> Join.semi ~par_threshold:0 a b p) "semi";
      join_prop_par (fun a b p -> Join.anti ~par_threshold:0 a b p) "anti";
      select_prop;
      project_prop;
      project_single_prop;
      group_by_prop;
      group_by_single_key_prop;
      group_filter_prop;
      group_filter_report_prop;
    ]
  @ [
      Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
      Alcotest.test_case "all-duplicate rows" `Quick test_all_duplicates;
      Alcotest.test_case "single-column relations" `Quick test_single_column;
      Alcotest.test_case "mixed value types" `Quick test_mixed_types;
      Alcotest.test_case "100-seed corpus: layout and pool insensitive" `Quick
        test_corpus_layout_insensitive;
    ]
